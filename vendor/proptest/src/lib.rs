//! Offline, API-compatible subset of [proptest](https://proptest-rs.github.io/).
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements exactly the surface the workspace's property tests use:
//!
//! * the [`Strategy`] trait with `prop_map`;
//! * `any::<T>()` for the primitive types the tests draw;
//! * integer/float ranges, `&str` character-class regexes, tuples,
//!   [`Just`], `collection::vec`, and `option::of` as strategies;
//! * the `proptest!`, `prop_compose!`, `prop_oneof!`, `prop_assert*!`,
//!   and `prop_assume!` macros;
//! * [`ProptestConfig`] with `with_cases`.
//!
//! Differences from upstream: generation is a fixed deterministic PRNG
//! seeded from the test name (override with `PROPTEST_SEED`), and there is
//! **no shrinking** — a failing case prints its inputs and panics as-is.

pub mod test_runner {
    /// Run-time configuration for a `proptest!` block.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; draw a fresh case.
        Reject,
        /// A `prop_assert*!` failed.
        Fail(String),
    }

    impl TestCaseError {
        /// A failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    /// Deterministic splitmix64 generator.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from a label (the test name) plus `PROPTEST_SEED` if set.
        pub fn deterministic(label: &str) -> TestRng {
            let mut seed = 0x9E37_79B9_7F4A_7C15u64;
            for b in label.bytes() {
                seed = seed.wrapping_mul(0x100_0000_01B3).wrapping_add(b as u64);
            }
            if let Ok(s) = std::env::var("PROPTEST_SEED") {
                if let Ok(extra) = s.parse::<u64>() {
                    seed ^= extra;
                }
            }
            TestRng { state: seed }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// A generator of values for property tests.
    ///
    /// Unlike upstream proptest there is no value tree or shrinking: a
    /// strategy is just a deterministic-random generator.
    pub trait Strategy {
        /// The type of generated values.
        type Value: Debug;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy yielding a constant value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// One boxed generator arm of a [`Union`].
    pub type UnionArm<T> = Box<dyn Fn(&mut TestRng) -> T>;

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<UnionArm<T>>,
    }

    impl<T> Union<T> {
        /// A union over the given generator arms.
        pub fn new(arms: Vec<UnionArm<T>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            (self.arms[i])(rng)
        }
    }

    /// `any::<T>()` support: types with a canonical full-range strategy.
    pub trait Arbitrary: Sized + Debug {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary(rng: &mut TestRng) -> [u8; N] {
            let mut out = [0u8; N];
            for b in &mut out {
                *b = rng.next_u64() as u8;
            }
            out
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    // ---- ranges -------------------------------------------------------

    macro_rules! range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64) - (lo as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
            impl Strategy for std::ops::RangeFrom<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let lo = self.start as u64;
                    let span = (<$t>::MAX as u64) - lo;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo + rng.below(span + 1)) as $t
                }
            }
        )*};
    }
    range_strategy_int!(u8, u16, u32, u64, usize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.unit_f64() * (self.end() - self.start())
        }
    }

    // ---- string regexes ----------------------------------------------

    /// `&str` strategies support the character-class subset of regex the
    /// tests use: a sequence of `[class]` or literal atoms, each with an
    /// optional `{m}`, `{m,n}` repetition.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
                let class = &chars[i + 1..close];
                i = close + 1;
                expand_class(class, pattern)
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse::<usize>().expect("repeat lower bound"),
                        b.trim().parse::<usize>().expect("repeat upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse::<usize>().expect("repeat count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let n = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..n {
                out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
            }
        }
        out
    }

    fn expand_class(class: &[char], pattern: &str) -> Vec<char> {
        let mut alphabet = Vec::new();
        let mut j = 0;
        while j < class.len() {
            if j + 2 < class.len() && class[j + 1] == '-' {
                let (lo, hi) = (class[j] as u32, class[j + 2] as u32);
                assert!(lo <= hi, "bad class range in {pattern:?}");
                for c in lo..=hi {
                    alphabet.push(char::from_u32(c).unwrap());
                }
                j += 3;
            } else {
                alphabet.push(class[j]);
                j += 1;
            }
        }
        assert!(!alphabet.is_empty(), "empty class in {pattern:?}");
        alphabet
    }

    // ---- tuples -------------------------------------------------------

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
    tuple_strategy!(A, B, C, D, E, F, G, H, I);
    tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
    tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
    tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);

    /// Strategy from a generator closure (the desugaring of
    /// `prop_compose!`).
    pub struct FnStrategy<F> {
        f: F,
    }

    impl<T, F: Fn(&mut TestRng) -> T> FnStrategy<F> {
        /// Wraps `f` as a strategy.
        pub fn new(f: F) -> FnStrategy<F> {
            FnStrategy { f }
        }
    }

    impl<T: Debug, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(rng)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `proptest::collection::vec(element, 0..n)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty vec size range");
            let span = (self.size.end - self.size.start) as u64;
            let n = self.size.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<T>`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `proptest::option::of(strategy)`: `None` about a quarter of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof,
        proptest,
    };
}

/// Defines property tests: each case draws its inputs, runs the body, and
/// repeats until the configured number of cases pass.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;) => {};
    (config = $config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut passed: u32 = 0;
            let mut attempts: u32 = 0;
            while passed < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(20).saturating_add(1000),
                    "prop_assume! rejected too many cases in {}",
                    stringify!($name)
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                let __inputs = {
                    #[allow(unused_mut)]
                    let mut s = String::new();
                    $(s.push_str(&format!(
                        "  {} = {:?}\n", stringify!($arg), &$arg
                    ));)*
                    s
                };
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                match outcome {
                    Ok(()) => passed += 1,
                    Err($crate::test_runner::TestCaseError::Reject) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => panic!(
                        "proptest case {}/{} failed: {}\ninputs:\n{}",
                        passed + 1,
                        config.cases,
                        msg,
                        __inputs
                    ),
                }
            }
        }
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
}

/// Composes named sub-strategies into a derived strategy function.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])*
     $vis:vis fn $name:ident($($param:ident: $param_ty:ty),* $(,)?)
        ($($arg:ident in $strat:expr),* $(,)?)
        -> $out:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($param: $param_ty),*) -> impl $crate::strategy::Strategy<Value = $out> {
            $crate::strategy::FnStrategy::new(move |rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), rng);)*
                $body
            })
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $({
                let __s = $arm;
                Box::new(move |rng: &mut $crate::test_runner::TestRng| {
                    $crate::strategy::Strategy::generate(&__s, rng)
                }) as Box<dyn Fn(&mut $crate::test_runner::TestRng) -> _>
            }),+
        ])
    };
}

/// Asserts inside a proptest body (fails the case, not the process).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Inequality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)+);
    }};
}

/// Rejects the current case (draws a fresh one) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_generation_respects_classes() {
        let mut rng = crate::test_runner::TestRng::deterministic("t");
        for _ in 0..100 {
            let s = crate::strategy::Strategy::generate(&"[a-d]{1,3}", &mut rng);
            assert!((1..=3).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='d').contains(&c)), "{s:?}");
        }
        for _ in 0..100 {
            let s = crate::strategy::Strategy::generate(&"[a-z][a-z0-9-]{0,14}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 15, "{s:?}");
            assert!(s.starts_with(|c: char| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u16..9, y in 0u8..=255, z in 0.25f64..0.75) {
            prop_assert!((3..9).contains(&x));
            let _ = y;
            prop_assert!((0.25..0.75).contains(&z));
        }

        #[test]
        fn assume_rejects(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn vec_and_option_shapes(
            v in crate::collection::vec(any::<u8>(), 0..5),
            o in crate::option::of(1u16..4),
        ) {
            prop_assert!(v.len() < 5);
            if let Some(p) = o { prop_assert!((1..4).contains(&p)); }
        }

        #[test]
        fn oneof_and_just(w in prop_oneof![Just(1u8), Just(2u8), 5u8..7]) {
            prop_assert!([1u8, 2, 5, 6].contains(&w));
        }
    }
}
